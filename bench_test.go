package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 7), one benchmark per artifact, plus ablations of the
// design choices DESIGN.md calls out. Benchmarks run the Quick experiment
// variants so `go test -bench=. -benchmem` finishes in minutes; run
// cmd/repro for the full-scale sweeps. Key outcomes are attached to the
// benchmark output via ReportMetric, so the benchmark log doubles as a
// results record.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/conv"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/models"
	"repro/internal/pebble"
	"repro/internal/report"
	"repro/internal/shapes"
)

func quickOpts() experiments.Options { return experiments.Options{Quick: true, Seed: 1} }

// BenchmarkFig9 regenerates Figure 9: dataflow-vs-library speedups for the
// direct convolution (strides 1, 2, 4) and the Winograd algorithm across
// image sizes and output channels on the 1080Ti model.
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	var direct, wino float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig9(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var d, w []float64
		for _, r := range results {
			if r.Algorithm == "direct" {
				d = append(d, r.Speedup)
			} else {
				w = append(w, r.Speedup)
			}
		}
		direct, wino = report.GeoMean(d), report.GeoMean(w)
	}
	b.ReportMetric(direct, "direct-speedup-geomean")
	b.ReportMetric(wino, "winograd-speedup-geomean")
}

// BenchmarkFig10 regenerates Figure 10: batched direct-convolution speedups.
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	var gm float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig10(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range results {
			v = append(v, r.Speedup)
		}
		gm = report.GeoMean(v)
	}
	b.ReportMetric(gm, "batched-speedup-geomean")
}

// BenchmarkFig11 regenerates Figure 11: tuning-convergence curves of the
// auto-tuning engine vs simulated annealing, genetic and random search.
func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	var ate, lib float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig11(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		ate = res.ATE[len(res.ATE)-1]
		lib = res.Baseline
	}
	b.ReportMetric(ate, "ate-final-gflops")
	b.ReportMetric(lib, "library-gflops")
}

// BenchmarkTable2 regenerates Table 2: search-space sizes, convergence and
// final performance, TVM-proxy vs the engine's pruned searching domain.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	var ratio, perf float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table2(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var ratios, perfs []float64
		for _, r := range rows {
			ratios = append(ratios, r.Ratio)
			perfs = append(perfs, r.PerfRatio)
		}
		ratio, perf = report.GeoMean(ratios), report.GeoMean(perfs)
	}
	b.ReportMetric(100*ratio, "space-ratio-pct")
	b.ReportMetric(perf, "ate-vs-tvm-perf")
}

// BenchmarkFig12 regenerates Figure 12: end-to-end CNN inference.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	var gm float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig12(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range results {
			v = append(v, r.Speedup)
		}
		gm = report.GeoMean(v)
	}
	b.ReportMetric(gm, "model-speedup-geomean")
}

// BenchmarkFig13 regenerates Figure 13: architecture sensitivity.
func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	var vsLib float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig13(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range results {
			v = append(v, r.Ours/r.Library)
		}
		vsLib = report.GeoMean(v)
	}
	b.ReportMetric(vsLib, "ours-vs-library-geomean")
}

// BenchmarkTheory plays pebble games on convolution DAGs and checks the
// bounds, reporting the tightness Q/bound of the best schedule found.
func BenchmarkTheory(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.TheoryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Theory(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Bound > 0 {
			b.ReportMetric(float64(r.QBelady)/r.Bound, "Q-over-bound")
			break
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPruning isolates the optimality-condition pruning: the
// same engine tunes AlexNet conv2 on the full vs pruned space.
func BenchmarkAblationPruning(b *testing.B) {
	b.ReportAllocs()
	arch := memsim.V100
	layer := shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 256, Hker: 5, Wker: 5, Strid: 1, Pad: 2}
	measure := autotune.DirectMeasurer(arch, layer)
	opts := autotune.DefaultOptions()
	opts.Budget = 64
	opts.Patience = 0
	var fullG, prunedG float64
	for i := 0; i < b.N; i++ {
		full, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		pruned, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		tf, err := autotune.Tune(full, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		tp, err := autotune.Tune(pruned, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		fullG, prunedG = tf.BestM.GFLOPS, tp.BestM.GFLOPS
	}
	b.ReportMetric(fullG, "full-space-gflops")
	b.ReportMetric(prunedG, "pruned-space-gflops")
}

// BenchmarkAblationModelGuided isolates the learned cost model: the engine
// vs pure random search at equal budget.
func BenchmarkAblationModelGuided(b *testing.B) {
	b.ReportAllocs()
	arch := memsim.V100
	layer := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 28, Win: 28, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	measure := autotune.DirectMeasurer(arch, layer)
	opts := autotune.DefaultOptions()
	opts.Budget = 64
	opts.Patience = 0
	var guided, random float64
	for i := 0; i < b.N; i++ {
		sp, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		tg, err := autotune.Tune(sp, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		rg, err := autotune.RandomSearch(sp, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		guided, random = tg.BestM.GFLOPS, rg.BestM.GFLOPS
	}
	b.ReportMetric(guided, "model-guided-gflops")
	b.ReportMetric(random, "random-gflops")
}

// BenchmarkAblationWinogradE isolates the Winograd output tile size: the
// untuned dataflow design at e=2 vs e=4.
func BenchmarkAblationWinogradE(b *testing.B) {
	b.ReportAllocs()
	arch := memsim.GTX1080Ti
	layer := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	var e2, e4 float64
	for i := 0; i < b.N; i++ {
		r2, err := conv.WinogradFusedDry(arch, layer, conv.DefaultWinogradConfig(arch, layer, 2))
		if err != nil {
			b.Fatal(err)
		}
		r4, err := conv.WinogradFusedDry(arch, layer, conv.DefaultWinogradConfig(arch, layer, 4))
		if err != nil {
			b.Fatal(err)
		}
		e2, e4 = r2.GFLOPS, r4.GFLOPS
	}
	b.ReportMetric(e2, "e2-gflops")
	b.ReportMetric(e4, "e4-gflops")
}

// BenchmarkAblationEviction isolates the greedy pebble scheduler's eviction
// policy on a real convolution DAG.
func BenchmarkAblationEviction(b *testing.B) {
	b.ReportAllocs()
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 6, Win: 6, Cout: 3, Hker: 3, Wker: 3, Strid: 1}
	g, err := dag.BuildDirectConv(s)
	if err != nil {
		b.Fatal(err)
	}
	var lru, belady int
	for i := 0; i < b.N; i++ {
		bl, err := pebble.Greedy(g.Graph, 16, pebble.Belady)
		if err != nil {
			b.Fatal(err)
		}
		lr, err := pebble.Greedy(g.Graph, 16, pebble.LRU)
		if err != nil {
			b.Fatal(err)
		}
		lru, belady = lr.IO(), bl.IO()
	}
	b.ReportMetric(float64(belady), "Q-belady")
	b.ReportMetric(float64(lru), "Q-lru")
}

// BenchmarkTuneNetwork measures the network-level tuning engine on the
// ResNet-18 layer sweep. Each per-candidate measurement carries an emulated
// hardware round-trip (compile + launch + read-back), the latency real
// auto-tuners hide by parallelizing measurement; the workers=N sub-benchmarks
// fan both the layers and each measurement batch across N goroutines.
// Wall-clock should drop ≥ 2x from workers=1 to workers=4 while the tuned
// configurations stay bit-identical (the benchmark fails otherwise).
func BenchmarkTuneNetwork(b *testing.B) {
	arch := memsim.V100
	layers := models.ResNet18().NetworkLayers()
	tune := autotune.DefaultOptions()
	tune.Budget = 32
	tune.Patience = 0
	tune.Seed = 1
	tune.MeasureLatency = 500 * time.Microsecond

	var reference []autotune.LayerVerdict
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := tune
				t.Workers = w
				// Fresh cache per iteration so every run performs the full sweep.
				verdicts, err := autotune.TuneNetwork(arch, layers, autotune.NewCache(),
					autotune.NetworkOptions{Tune: t, Workers: w, Winograd: true})
				if err != nil {
					b.Fatal(err)
				}
				if reference == nil {
					reference = verdicts
				}
				for j := range verdicts {
					if verdicts[j].Config != reference[j].Config || verdicts[j].Kind != reference[j].Kind {
						b.Fatalf("layer %s: workers=%d verdict %v diverges from %v",
							layers[j].Name, w, verdicts[j].Config, reference[j].Config)
					}
				}
				b.ReportMetric(autotune.NetworkSeconds(verdicts)*1e3, "tuned-network-ms")
			}
		})
	}
}

// BenchmarkTuneNetworkMixedKinds measures per-layer kernel choice on the
// MobileNet-V1 sweep — the grouped/depthwise network where the choice
// matters most. Two arms at the same per-layer budget: direct-only, and the
// full candidate set (Winograd + FFT + implicit-GEMM filtered per layer by
// the candidate rule). Widening the candidate set can only improve the kept
// verdicts, so the mixed arm's repeat-weighted network time must be no
// worse than direct-only's — the benchmark hard-fails otherwise. The cost
// of the wider search (more searches per layer) is the wall-clock delta
// tracked via BENCH_autotune.json.
func BenchmarkTuneNetworkMixedKinds(b *testing.B) {
	arch := memsim.V100
	layers := models.MobileNetV1().NetworkLayers()
	tune := autotune.DefaultOptions()
	tune.Budget = 32
	tune.Patience = 0
	tune.Seed = 1
	tune.MeasureLatency = 500 * time.Microsecond

	arms := []struct {
		name string
		opts autotune.NetworkOptions
	}{
		{"direct-only", autotune.NetworkOptions{Tune: tune, Workers: 4}},
		{"mixed", autotune.NetworkOptions{Tune: tune, Workers: 4, Winograd: true,
			Kinds: []autotune.Kind{autotune.FFT, autotune.ImplicitGEMM}}},
	}
	net := make(map[string]float64)
	for _, arm := range arms {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			var n float64
			for i := 0; i < b.N; i++ {
				verdicts, err := autotune.TuneNetwork(arch, layers, autotune.NewCache(), arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				n = autotune.NetworkSeconds(verdicts)
			}
			net[arm.name] = n
			b.ReportMetric(n*1e3, "tuned-network-ms")
		})
	}
	if net["mixed"] > net["direct-only"] {
		b.Fatalf("mixed-kind network %.6gs worse than direct-only %.6gs at equal budget",
			net["mixed"], net["direct-only"])
	}
}

// BenchmarkTuneNetworkWarm isolates cross-layer warm-starting on the
// ResNet-18 sweep. Three arms, each a fresh cache, every measurement
// carrying the emulated hardware round-trip:
//
//	cold         — every distinct layer tuned from scratch at the shared
//	               per-layer budget/patience
//	warm         — the same budget/patience with the transfer schedule:
//	               one representative search per layer family runs cold,
//	               every other layer starts from the pool's fitted cost
//	               model and transferred incumbents
//	cold-matched — the cold path at the engine's default budget/patience,
//	               the setting it needs to reach the warm arm's verdict
//
// The repeat-weighted network-time guards are deterministic and hard-fail:
// at equal budget the warm sweep's verdict must be no worse than cold's,
// and the cold-matched arm must actually reach the warm verdict (measured,
// warm retires layers after ~30% fewer measurements and lands a 15-20%
// better verdict at equal budget). The headline wall-clock margin — the
// cold path needs several times the time (~8x on the reference machine,
// against a ≥ 2x acceptance bar) to match what the warm sweep delivers —
// is load-dependent, so it is logged and tracked via BENCH_autotune.json
// rather than asserted.
func BenchmarkTuneNetworkWarm(b *testing.B) {
	arch := memsim.V100
	layers := models.ResNet18().NetworkLayers()
	tune := autotune.DefaultOptions()
	tune.Budget = 128
	tune.Patience = 16
	tune.Seed = 1
	tune.MeasureLatency = 500 * time.Microsecond
	matched := autotune.DefaultOptions() // Budget 400, Patience 120
	matched.Seed = 1
	matched.MeasureLatency = tune.MeasureLatency

	arms := []struct {
		name string
		opts autotune.Options
		warm bool
	}{
		{"cold", tune, false},
		{"warm", tune, true},
		{"cold-matched", matched, false},
	}
	net := make(map[string]float64)
	avgNs := make(map[string]float64)
	for _, arm := range arms {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			start := time.Now()
			var n float64
			for i := 0; i < b.N; i++ {
				verdicts, err := autotune.TuneNetwork(arch, layers, autotune.NewCache(),
					autotune.NetworkOptions{Tune: arm.opts, Workers: 4, Winograd: true, Warm: arm.warm})
				if err != nil {
					b.Fatal(err)
				}
				n = autotune.NetworkSeconds(verdicts)
			}
			net[arm.name] = n
			avgNs[arm.name] = float64(time.Since(start).Nanoseconds()) / float64(b.N)
			b.ReportMetric(n*1e3, "tuned-network-ms")
		})
	}
	// The two verdict-quality guards are deterministic (fixed seed) and
	// hard-fail; the wall-clock margin is load-dependent — a single
	// -benchtime=1x sample on a noisy CI runner is not evidence — so it is
	// reported (≈8x on the reference machine, the ≥2x acceptance bar) and
	// tracked through BENCH_autotune.json instead of asserted.
	if c, w := net["cold"], net["warm"]; c > 0 && w > c*(1+1e-9) {
		b.Fatalf("equal budget: warm network time %.6g worse than cold %.6g", w, c)
	}
	if m, w := net["cold-matched"], net["warm"]; m > 0 && m > w*(1+1e-9) {
		b.Fatalf("cold-matched arm (%.6g) did not reach the warm verdict (%.6g)", m, w)
	}
	if m, w := avgNs["cold-matched"], avgNs["warm"]; m > 0 && w > 0 {
		b.Logf("warm speedup vs cold-matched: %.2fx", m/w)
	}
}

// BenchmarkAnalyticVerdict times the instant-verdict tier on the full
// ResNet-18 inventory: "scan" pays the once-per-space enumeration a cold
// daemon pays on its first degraded answer; "serve" is the steady-state
// memoized path every later answer takes — the budget the degradation
// story depends on (a degraded daemon must answer in well under a
// millisecond per network, no matter how overloaded the measured path is).
func BenchmarkAnalyticVerdict(b *testing.B) {
	arch := memsim.V100
	layers := models.ResNet18().NetworkLayers()
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := autotune.NewAnalyticDSE(arch).Network(layers, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serve", func(b *testing.B) {
		b.ReportAllocs()
		dse := autotune.NewAnalyticDSE(arch)
		verdicts, err := dse.Network(layers, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dse.Network(layers, true); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(autotune.NetworkSeconds(verdicts)*1e3, "analytic-network-ms")
	})
}

// BenchmarkTuneResume compares tuning AlexNet conv2 to a 192-measurement
// budget from scratch against resuming a cache that already persists the
// first 96 measurements: the resumed run replays the history (no repeat
// measurements, each fresh one still paying the emulated round-trip) and
// only spends the remaining budget.
func BenchmarkTuneResume(b *testing.B) {
	arch := memsim.V100
	// AlexNet conv2, the layer the engine benchmarks share.
	s := shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 256, Hker: 5, Wker: 5, Strid: 1, Pad: 2}
	measure := autotune.DirectMeasurer(arch, s)
	opts := autotune.DefaultOptions()
	opts.Patience = 0
	opts.Seed = 1
	opts.MeasureLatency = 200 * time.Microsecond

	mustSpace := func() *autotune.Space {
		sp, err := autotune.NewSpace(s, arch, autotune.Direct, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		return sp
	}
	// Persist a half-budget search once; each resume iteration reloads it.
	halfCache := autotune.NewCache()
	half := opts
	half.Budget = 96
	if _, _, err := autotune.TuneCached(halfCache, mustSpace(), measure, half); err != nil {
		b.Fatal(err)
	}
	var persisted bytes.Buffer
	if err := halfCache.Save(&persisted); err != nil {
		b.Fatal(err)
	}

	full := opts
	full.Budget = 192
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := autotune.Tune(mustSpace(), measure, full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resume", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := autotune.NewCache()
			if err := cache.Load(bytes.NewReader(persisted.Bytes())); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			tr, err := autotune.TuneResumed(cache, mustSpace(), measure, full)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(tr.Measurements), "total-measurements")
			}
		}
	})
}

// BenchmarkDirectTiledWet measures the wall-clock cost of the wet (real
// data) dataflow execution itself — the library's own performance as Go
// code, not the simulated GPU time.
func BenchmarkDirectTiledWet(b *testing.B) {
	arch := memsim.GTX1080Ti
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 56, Win: 56, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := conv.RandomOperands(s, 1)
	cfg := conv.DefaultDirectConfig(arch, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.DirectTiled(arch, s, cfg, in, ker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWinogradFusedWet is the wet-execution benchmark for the fused
// Winograd dataflow.
func BenchmarkWinogradFusedWet(b *testing.B) {
	arch := memsim.GTX1080Ti
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 56, Win: 56, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := conv.RandomOperands(s, 2)
	cfg := conv.DefaultWinogradConfig(arch, s, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.WinogradFused(arch, s, cfg, in, ker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDry measures one count-only dataflow evaluation through
// the engine's memoized measurer — the steady-state unit of work of every
// tuning measurement (the memo is how repeated evaluations of equivalent
// tiles during a search become O(1) lookups). Must run at 0 allocs/op.
func BenchmarkMeasureDry(b *testing.B) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 112, Win: 112, Cout: 512, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := conv.DefaultDirectConfig(arch, s)
	measure := autotune.DirectMeasurer(arch, s)
	if _, ok := measure(cfg); !ok {
		b.Fatal("default config rejected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := measure(cfg); !ok {
			b.Fatal("measurement failed")
		}
	}
}

// BenchmarkMeasureDryUnmemoized is the same evaluation without the memo:
// the closed-form counts recompute on every call. The gap to
// BenchmarkMeasureDry is what the memo buys a search.
func BenchmarkMeasureDryUnmemoized(b *testing.B) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 112, Win: 112, Cout: 512, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := conv.DefaultDirectConfig(arch, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.DryDirectTiled(arch, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDryWinograd is the Winograd counterpart of
// BenchmarkMeasureDry (memoized steady state, 0 allocs/op).
func BenchmarkMeasureDryWinograd(b *testing.B) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := conv.DefaultWinogradConfig(arch, s, 2)
	measure := autotune.WinogradMeasurer(arch, s)
	if _, ok := measure(cfg); !ok {
		b.Fatal("default config rejected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := measure(cfg); !ok {
			b.Fatal("measurement failed")
		}
	}
}
