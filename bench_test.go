package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 7), one benchmark per artifact, plus ablations of the
// design choices DESIGN.md calls out. Benchmarks run the Quick experiment
// variants so `go test -bench=. -benchmem` finishes in minutes; run
// cmd/repro for the full-scale sweeps. Key outcomes are attached to the
// benchmark output via ReportMetric, so the benchmark log doubles as a
// results record.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/conv"
	"repro/internal/dag"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/models"
	"repro/internal/pebble"
	"repro/internal/report"
	"repro/internal/shapes"
)

func quickOpts() experiments.Options { return experiments.Options{Quick: true, Seed: 1} }

// BenchmarkFig9 regenerates Figure 9: dataflow-vs-library speedups for the
// direct convolution (strides 1, 2, 4) and the Winograd algorithm across
// image sizes and output channels on the 1080Ti model.
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	var direct, wino float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig9(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var d, w []float64
		for _, r := range results {
			if r.Algorithm == "direct" {
				d = append(d, r.Speedup)
			} else {
				w = append(w, r.Speedup)
			}
		}
		direct, wino = report.GeoMean(d), report.GeoMean(w)
	}
	b.ReportMetric(direct, "direct-speedup-geomean")
	b.ReportMetric(wino, "winograd-speedup-geomean")
}

// BenchmarkFig10 regenerates Figure 10: batched direct-convolution speedups.
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	var gm float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig10(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range results {
			v = append(v, r.Speedup)
		}
		gm = report.GeoMean(v)
	}
	b.ReportMetric(gm, "batched-speedup-geomean")
}

// BenchmarkFig11 regenerates Figure 11: tuning-convergence curves of the
// auto-tuning engine vs simulated annealing, genetic and random search.
func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	var ate, lib float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig11(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		ate = res.ATE[len(res.ATE)-1]
		lib = res.Baseline
	}
	b.ReportMetric(ate, "ate-final-gflops")
	b.ReportMetric(lib, "library-gflops")
}

// BenchmarkTable2 regenerates Table 2: search-space sizes, convergence and
// final performance, TVM-proxy vs the engine's pruned searching domain.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	var ratio, perf float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table2(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var ratios, perfs []float64
		for _, r := range rows {
			ratios = append(ratios, r.Ratio)
			perfs = append(perfs, r.PerfRatio)
		}
		ratio, perf = report.GeoMean(ratios), report.GeoMean(perfs)
	}
	b.ReportMetric(100*ratio, "space-ratio-pct")
	b.ReportMetric(perf, "ate-vs-tvm-perf")
}

// BenchmarkFig12 regenerates Figure 12: end-to-end CNN inference.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	var gm float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig12(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range results {
			v = append(v, r.Speedup)
		}
		gm = report.GeoMean(v)
	}
	b.ReportMetric(gm, "model-speedup-geomean")
}

// BenchmarkFig13 regenerates Figure 13: architecture sensitivity.
func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	var vsLib float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig13(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range results {
			v = append(v, r.Ours/r.Library)
		}
		vsLib = report.GeoMean(v)
	}
	b.ReportMetric(vsLib, "ours-vs-library-geomean")
}

// BenchmarkTheory plays pebble games on convolution DAGs and checks the
// bounds, reporting the tightness Q/bound of the best schedule found.
func BenchmarkTheory(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.TheoryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Theory(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Bound > 0 {
			b.ReportMetric(float64(r.QBelady)/r.Bound, "Q-over-bound")
			break
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPruning isolates the optimality-condition pruning: the
// same engine tunes AlexNet conv2 on the full vs pruned space.
func BenchmarkAblationPruning(b *testing.B) {
	b.ReportAllocs()
	arch := memsim.V100
	layer := shapes.ConvShape{Batch: 1, Cin: 96, Hin: 27, Win: 27, Cout: 256, Hker: 5, Wker: 5, Strid: 1, Pad: 2}
	measure := autotune.DirectMeasurer(arch, layer)
	opts := autotune.DefaultOptions()
	opts.Budget = 64
	opts.Patience = 0
	var fullG, prunedG float64
	for i := 0; i < b.N; i++ {
		full, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		pruned, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		tf, err := autotune.Tune(full, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		tp, err := autotune.Tune(pruned, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		fullG, prunedG = tf.BestM.GFLOPS, tp.BestM.GFLOPS
	}
	b.ReportMetric(fullG, "full-space-gflops")
	b.ReportMetric(prunedG, "pruned-space-gflops")
}

// BenchmarkAblationModelGuided isolates the learned cost model: the engine
// vs pure random search at equal budget.
func BenchmarkAblationModelGuided(b *testing.B) {
	b.ReportAllocs()
	arch := memsim.V100
	layer := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 28, Win: 28, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	measure := autotune.DirectMeasurer(arch, layer)
	opts := autotune.DefaultOptions()
	opts.Budget = 64
	opts.Patience = 0
	var guided, random float64
	for i := 0; i < b.N; i++ {
		sp, err := autotune.NewSpace(layer, arch, autotune.Direct, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		tg, err := autotune.Tune(sp, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		rg, err := autotune.RandomSearch(sp, measure, opts)
		if err != nil {
			b.Fatal(err)
		}
		guided, random = tg.BestM.GFLOPS, rg.BestM.GFLOPS
	}
	b.ReportMetric(guided, "model-guided-gflops")
	b.ReportMetric(random, "random-gflops")
}

// BenchmarkAblationWinogradE isolates the Winograd output tile size: the
// untuned dataflow design at e=2 vs e=4.
func BenchmarkAblationWinogradE(b *testing.B) {
	b.ReportAllocs()
	arch := memsim.GTX1080Ti
	layer := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	var e2, e4 float64
	for i := 0; i < b.N; i++ {
		r2, err := conv.WinogradFusedDry(arch, layer, conv.DefaultWinogradConfig(arch, layer, 2))
		if err != nil {
			b.Fatal(err)
		}
		r4, err := conv.WinogradFusedDry(arch, layer, conv.DefaultWinogradConfig(arch, layer, 4))
		if err != nil {
			b.Fatal(err)
		}
		e2, e4 = r2.GFLOPS, r4.GFLOPS
	}
	b.ReportMetric(e2, "e2-gflops")
	b.ReportMetric(e4, "e4-gflops")
}

// BenchmarkAblationEviction isolates the greedy pebble scheduler's eviction
// policy on a real convolution DAG.
func BenchmarkAblationEviction(b *testing.B) {
	b.ReportAllocs()
	s := shapes.ConvShape{Batch: 1, Cin: 2, Hin: 6, Win: 6, Cout: 3, Hker: 3, Wker: 3, Strid: 1}
	g, err := dag.BuildDirectConv(s)
	if err != nil {
		b.Fatal(err)
	}
	var lru, belady int
	for i := 0; i < b.N; i++ {
		bl, err := pebble.Greedy(g.Graph, 16, pebble.Belady)
		if err != nil {
			b.Fatal(err)
		}
		lr, err := pebble.Greedy(g.Graph, 16, pebble.LRU)
		if err != nil {
			b.Fatal(err)
		}
		lru, belady = lr.IO(), bl.IO()
	}
	b.ReportMetric(float64(belady), "Q-belady")
	b.ReportMetric(float64(lru), "Q-lru")
}

// BenchmarkTuneNetwork measures the network-level tuning engine on the
// ResNet-18 layer sweep. Each per-candidate measurement carries an emulated
// hardware round-trip (compile + launch + read-back), the latency real
// auto-tuners hide by parallelizing measurement; the workers=N sub-benchmarks
// fan both the layers and each measurement batch across N goroutines.
// Wall-clock should drop ≥ 2x from workers=1 to workers=4 while the tuned
// configurations stay bit-identical (the benchmark fails otherwise).
func BenchmarkTuneNetwork(b *testing.B) {
	arch := memsim.V100
	model := models.ResNet18()
	layers := make([]autotune.NetworkLayer, len(model.Layers))
	for i, l := range model.Layers {
		layers[i] = autotune.NetworkLayer{Name: l.Name, Shape: l.Shape, Repeat: l.Repeat}
	}
	tune := autotune.DefaultOptions()
	tune.Budget = 32
	tune.Patience = 0
	tune.Seed = 1
	tune.MeasureLatency = 500 * time.Microsecond

	var reference []autotune.LayerVerdict
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := tune
				t.Workers = w
				// Fresh cache per iteration so every run performs the full sweep.
				verdicts, err := autotune.TuneNetwork(arch, layers, autotune.NewCache(),
					autotune.NetworkOptions{Tune: t, Workers: w, Winograd: true})
				if err != nil {
					b.Fatal(err)
				}
				if reference == nil {
					reference = verdicts
				}
				for j := range verdicts {
					if verdicts[j].Config != reference[j].Config || verdicts[j].Kind != reference[j].Kind {
						b.Fatalf("layer %s: workers=%d verdict %v diverges from %v",
							layers[j].Name, w, verdicts[j].Config, reference[j].Config)
					}
				}
				b.ReportMetric(autotune.NetworkSeconds(verdicts)*1e3, "tuned-network-ms")
			}
		})
	}
}

// BenchmarkDirectTiledWet measures the wall-clock cost of the wet (real
// data) dataflow execution itself — the library's own performance as Go
// code, not the simulated GPU time.
func BenchmarkDirectTiledWet(b *testing.B) {
	arch := memsim.GTX1080Ti
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 56, Win: 56, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := conv.RandomOperands(s, 1)
	cfg := conv.DefaultDirectConfig(arch, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.DirectTiled(arch, s, cfg, in, ker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWinogradFusedWet is the wet-execution benchmark for the fused
// Winograd dataflow.
func BenchmarkWinogradFusedWet(b *testing.B) {
	arch := memsim.GTX1080Ti
	s := shapes.ConvShape{Batch: 1, Cin: 32, Hin: 56, Win: 56, Cout: 32, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	in, ker := conv.RandomOperands(s, 2)
	cfg := conv.DefaultWinogradConfig(arch, s, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.WinogradFused(arch, s, cfg, in, ker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDry measures one count-only dataflow evaluation through
// the engine's memoized measurer — the steady-state unit of work of every
// tuning measurement (the memo is how repeated evaluations of equivalent
// tiles during a search become O(1) lookups). Must run at 0 allocs/op.
func BenchmarkMeasureDry(b *testing.B) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 112, Win: 112, Cout: 512, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := conv.DefaultDirectConfig(arch, s)
	measure := autotune.DirectMeasurer(arch, s)
	if _, ok := measure(cfg); !ok {
		b.Fatal("default config rejected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := measure(cfg); !ok {
			b.Fatal("measurement failed")
		}
	}
}

// BenchmarkMeasureDryUnmemoized is the same evaluation without the memo:
// the closed-form counts recompute on every call. The gap to
// BenchmarkMeasureDry is what the memo buys a search.
func BenchmarkMeasureDryUnmemoized(b *testing.B) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 112, Win: 112, Cout: 512, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := conv.DefaultDirectConfig(arch, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.DryDirectTiled(arch, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureDryWinograd is the Winograd counterpart of
// BenchmarkMeasureDry (memoized steady state, 0 allocs/op).
func BenchmarkMeasureDryWinograd(b *testing.B) {
	arch := memsim.V100
	s := shapes.ConvShape{Batch: 1, Cin: 256, Hin: 56, Win: 56, Cout: 128, Hker: 3, Wker: 3, Strid: 1, Pad: 1}
	cfg := conv.DefaultWinogradConfig(arch, s, 2)
	measure := autotune.WinogradMeasurer(arch, s)
	if _, ok := measure(cfg); !ok {
		b.Fatal("default config rejected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := measure(cfg); !ok {
			b.Fatal("measurement failed")
		}
	}
}
