// Package repro is a Go reproduction of "I/O Lower Bounds for Auto-tuning of
// Convolutions in CNNs" (PPoPP 2021): the red–blue-pebble-game I/O
// lower-bound theory for composite algorithms, its instantiation for the
// direct and Winograd convolution algorithms, the near I/O-optimal dataflow
// designs the bounds suggest, and the optimality-condition-pruned
// auto-tuning engine — all running against a deterministic simulated GPU
// memory hierarchy (see internal/memsim) instead of CUDA hardware.
//
// This root package is the public facade: it re-exports the types a
// downstream user needs and wraps the common workflows (bound queries,
// running the dataflows, tuning a layer). The full machinery lives in the
// internal packages; the example programs under examples/ and the
// experiment regeneration harness under cmd/repro are built on this API.
package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/autotune"
	"repro/internal/bounds"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/shapes"
	"repro/internal/tensor"
)

// Shape describes one convolution layer (batch, channels, spatial dims,
// kernel, stride μ, padding).
type Shape = shapes.ConvShape

// Arch is a simulated accelerator description.
type Arch = memsim.Arch

// Config is one point of the Table-1 configuration space: output tile,
// thread-block geometry, shared memory and layout.
type Config = conv.Config

// Result is the outcome of a simulated convolution: the output tensor (nil
// for count-only runs), exact I/O counts, and the modeled runtime.
type Result = conv.Result

// Tensor is a dense float32 tensor.
type Tensor = tensor.Tensor

// Tile is an output sub-block x×y×z.
type Tile = bounds.Tile

// TuneTrace records a tuning run: the best configuration and the
// best-so-far curve.
type TuneTrace = autotune.Trace

// Kind selects a convolution algorithm template ("direct", "winograd",
// "fft", "igemm").
type Kind = autotune.Kind

// Algorithm kinds the tuner can search.
const (
	Direct       = autotune.Direct
	Winograd     = autotune.Winograd
	FFT          = autotune.FFT
	ImplicitGEMM = autotune.ImplicitGEMM
)

// ParseKind parses an algorithm kind name; unknown names are rejected.
func ParseKind(name string) (Kind, error) { return autotune.ParseKind(name) }

// Architectures returns the built-in simulated GPU catalog (1080Ti, TitanX,
// V100, GFX906).
func Architectures() []Arch { return memsim.Catalog }

// ArchByName looks up a catalog architecture ("V100", "1080Ti", ...).
func ArchByName(name string) (Arch, error) { return memsim.ByName(name) }

// NewShape builds a square-image layer, the common case in the paper's
// evaluation.
func NewShape(batch, cin, hw, cout, kernel, stride, pad int) (Shape, error) {
	s := Shape{Batch: batch, Cin: cin, Hin: hw, Win: hw, Cout: cout,
		Hker: kernel, Wker: kernel, Strid: stride, Pad: pad}
	return s, s.Validate()
}

// NewGroupedShape is NewShape for a grouped convolution: groups independent
// (cin/groups -> cout/groups) convolutions, covering depthwise layers
// (groups == cin == cout) and everything between. groups must divide both
// channel counts.
func NewGroupedShape(batch, cin, hw, cout, kernel, stride, pad, groups int) (Shape, error) {
	s := Shape{Batch: batch, Cin: cin, Hin: hw, Win: hw, Cout: cout,
		Hker: kernel, Wker: kernel, Strid: stride, Pad: pad, Groups: groups}
	return s, s.Validate()
}

// LowerBoundDirect is Theorem 4.12: the minimum off-chip data movement (in
// elements) of the direct convolution with fast memory of S elements.
func LowerBoundDirect(s Shape, fastMem int) float64 {
	return bounds.DirectLowerBound(s, fastMem)
}

// LowerBoundWinograd is Theorem 4.20 for the Winograd algorithm F(e×e, r×r).
func LowerBoundWinograd(s Shape, e, fastMem int) float64 {
	return bounds.WinogradLowerBound(s, e, fastMem)
}

// DataflowIODirect is Equation 21: the off-chip traffic of the Section 5.2
// dataflow at its optimal tile for fast memory S shared by np processors.
func DataflowIODirect(s Shape, fastMem, np int) float64 {
	return bounds.DirectDataflowIOOptimal(s, fastMem, np)
}

// DataflowIOWinograd is Equation 23 for the Section 5.3 Winograd dataflow.
func DataflowIOWinograd(s Shape, e, fastMem, np int) float64 {
	return bounds.WinogradDataflowIOOptimal(s, e, fastMem, np)
}

// OptimalTileDirect returns the continuous-optimum output tile satisfying
// the paper's optimality condition x·y = R·z.
func OptimalTileDirect(s Shape, fastMem, np int) Tile {
	return bounds.OptimalTileDirect(s, fastMem, np)
}

// RandomOperands builds deterministic random input and kernel tensors.
func RandomOperands(s Shape, seed int64) (input, kernels *Tensor) {
	return conv.RandomOperands(s, seed)
}

// Reference computes the convolution with the plain CPU oracle.
func Reference(s Shape, input, kernels *Tensor) (*Tensor, error) {
	return conv.Reference(s, input, kernels)
}

// DefaultDirectConfig is the untuned Section 5.2 dataflow design for a
// layer: optimality-condition tile sized to S/Np.
func DefaultDirectConfig(arch Arch, s Shape) Config {
	return conv.DefaultDirectConfig(arch, s)
}

// DefaultWinogradConfig is the untuned Section 5.3 design for F(e×e, r×r).
func DefaultWinogradConfig(arch Arch, s Shape, e int) Config {
	return conv.DefaultWinogradConfig(arch, s, e)
}

// RunDirect executes the I/O-optimal direct dataflow on the simulated
// architecture, computing real values and exact I/O counts.
func RunDirect(arch Arch, s Shape, cfg Config, input, kernels *Tensor) (*Result, error) {
	return conv.DirectTiled(arch, s, cfg, input, kernels)
}

// RunWinograd executes the fused Winograd dataflow.
func RunWinograd(arch Arch, s Shape, cfg Config, input, kernels *Tensor) (*Result, error) {
	return conv.WinogradFused(arch, s, cfg, input, kernels)
}

// MeasureDirect returns the exact counts and simulated time of the direct
// dataflow without computing values (fast, any scale).
func MeasureDirect(arch Arch, s Shape, cfg Config) (*Result, error) {
	return conv.DirectTiledDry(arch, s, cfg)
}

// MeasureWinograd is MeasureDirect for the fused Winograd dataflow.
func MeasureWinograd(arch Arch, s Shape, cfg Config) (*Result, error) {
	return conv.WinogradFusedDry(arch, s, cfg)
}

// MeasureKind is MeasureDirect for any algorithm kind: the same dry
// evaluator behind that kind's tuning measurements, exposed for roofline
// diagnosis of a tuned configuration.
func MeasureKind(arch Arch, s Shape, kind Kind, cfg Config) (*Result, error) {
	switch kind {
	case autotune.Winograd:
		return conv.WinogradFusedDry(arch, s, cfg)
	case autotune.FFT:
		r, err := conv.DryFFTTiled(arch, s, cfg)
		if err != nil {
			return nil, err
		}
		return &r, nil
	case autotune.ImplicitGEMM:
		r, err := conv.DryIGEMMTiled(arch, s, cfg)
		if err != nil {
			return nil, err
		}
		return &r, nil
	default:
		return conv.DirectTiledDry(arch, s, cfg)
	}
}

// MeasureLibraryDirect returns the better of the two library direct paths
// (naive, im2col+GEMM) — the baseline the paper compares against.
func MeasureLibraryDirect(arch Arch, s Shape) (*Result, error) {
	naive, err := conv.NaiveDirectDry(arch, s)
	if err != nil {
		return nil, err
	}
	col, err := conv.Im2colGEMMDry(arch, s)
	if err != nil {
		return nil, err
	}
	if naive.Seconds < col.Seconds {
		return naive, nil
	}
	return col, nil
}

// MeasureLibraryWinograd returns the unfused library-style Winograd
// pipeline's counts and simulated time.
func MeasureLibraryWinograd(arch Arch, s Shape, e int) (*Result, error) {
	return conv.WinogradUnfusedDry(arch, s, e)
}

// MeasureImplicitGEMM returns the implicit-GEMM direct algorithm's counts
// and simulated time — the modern library path, provided as an extension
// beyond the paper's cuDNN-7-era baselines.
func MeasureImplicitGEMM(arch Arch, s Shape) (*Result, error) {
	return conv.ImplicitGEMMDry(arch, s)
}

// MeasureFFTConv returns the frequency-domain convolution's counts and
// simulated time — the other indirect method of the paper's taxonomy,
// competitive only at large kernel sizes.
func MeasureFFTConv(arch Arch, s Shape) (*Result, error) {
	return conv.FFTConvDry(arch, s)
}

// Measurement is one dry-run measurement outcome, as produced by the
// engine's measurers.
type Measurement = autotune.Measurement

// Measurer evaluates one configuration; ok is false for configurations
// that fail to build or exceed resources.
type Measurer = autotune.Measurer

// FallibleMeasurer is the error-aware measurement seam: a non-nil error is
// a transient failure (retryable), distinct from ok=false (config invalid,
// final). The engine's retry pipeline (see RetryPolicy) absorbs the
// former.
type FallibleMeasurer = autotune.FallibleMeasurer

// RetryPolicy configures the engine's fault-tolerant measurement pipeline:
// retry with capped, deterministically-jittered exponential backoff;
// quarantine after MaxAttempts consecutive transient failures; and a
// median-of-k noisy-reading defense anchored on the I/O lower bound. The
// zero value (no retries, no defense) reproduces the fault-oblivious
// engine bit-for-bit.
type RetryPolicy = autotune.RetryPolicy

// NewDirectMeasurer returns a reusable, memoized measurer for the direct
// dataflow on one (arch, shape): repeated evaluations of configurations
// sharing an output tile are O(1) lookups and the steady state allocates
// nothing, which is what makes batch evaluation (and tuning) fast. Safe
// for concurrent use.
func NewDirectMeasurer(arch Arch, s Shape) Measurer {
	return autotune.DirectMeasurer(arch, s)
}

// NewWinogradMeasurer is NewDirectMeasurer for the fused Winograd dataflow.
func NewWinogradMeasurer(arch Arch, s Shape) Measurer {
	return autotune.WinogradMeasurer(arch, s)
}

// TuneOptions controls a tuning run; the zero value selects defaults.
type TuneOptions struct {
	// Budget is the maximum number of measurements (default 400).
	Budget int
	// Seed makes the run deterministic (default 1).
	Seed int64
	// Workers is how many goroutines measure each candidate batch
	// concurrently (default 1). The tuning outcome is identical for any
	// worker count at a fixed seed.
	Workers int
	// MeasureLatency emulates the per-measurement hardware round-trip that
	// real auto-tuners overlap with a parallel measurement executor.
	MeasureLatency time.Duration
	// NoPrune disables the engine's bound-guided pruning: by default a
	// candidate whose I/O-lower-bound-implied time already exceeds the best
	// measured time is skipped without being measured (the skip count comes
	// back in TuneTrace.Pruned). The bound is a true floor on every
	// measurement, so pruning never discards a candidate that could have
	// improved the incumbent — skipped measurements are pure savings,
	// though the freed budget may steer a budget-limited search along a
	// different (typically better) trajectory than a NoPrune run.
	NoPrune bool
	// MinDelta is the relative improvement below which the engine's
	// patience is not reset (classic early stopping's min_delta): a search
	// polishing its incumbent by sub-MinDelta slivers retires instead of
	// paying the full patience again per sliver. The best configuration
	// still updates on any improvement. 0 (default): any improvement
	// resets patience.
	MinDelta float64
	// Retry configures the fault-tolerant measurement pipeline (retries,
	// quarantine, noise defense); the zero value changes nothing. Only
	// meaningful with a measurement backend that can actually fail — the
	// built-in simulator never does.
	Retry RetryPolicy
}

func (o TuneOptions) lower() autotune.Options {
	opts := autotune.DefaultOptions()
	if o.Budget > 0 {
		opts.Budget = o.Budget
	}
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	if o.Workers > 0 {
		opts.Workers = o.Workers
	}
	opts.MeasureLatency = o.MeasureLatency
	opts.NoPrune = o.NoPrune
	opts.MinDelta = o.MinDelta
	opts.Retry = o.Retry
	return opts
}

// TuneDirect runs the paper's auto-tuning engine on the
// optimality-condition-pruned searching domain for the direct dataflow.
func TuneDirect(arch Arch, s Shape, o TuneOptions) (*TuneTrace, error) {
	sp, err := autotune.NewSpace(s, arch, autotune.Direct, 0, true)
	if err != nil {
		return nil, err
	}
	return autotune.Tune(sp, autotune.DirectMeasurer(arch, s), o.lower())
}

// TuneWinograd runs the engine for the fused Winograd dataflow (tile edge
// e ∈ {2, 4} is part of the search).
func TuneWinograd(arch Arch, s Shape, o TuneOptions) (*TuneTrace, error) {
	sp, err := autotune.NewSpace(s, arch, autotune.Winograd, 2, true)
	if err != nil {
		return nil, err
	}
	return autotune.Tune(sp, autotune.WinogradMeasurer(arch, s), o.lower())
}

// ResumeDirect continues a cached direct-dataflow search at a (typically
// higher) budget: the persisted measurement history replays into the
// engine — no measurement is ever repeated — and the grown state is
// written back to the cache. A cached history already covering the budget
// returns as a synthesized trace without measuring anything.
func ResumeDirect(arch Arch, s Shape, cache *TuningCache, o TuneOptions) (*TuneTrace, error) {
	sp, err := autotune.NewSpace(s, arch, autotune.Direct, 0, true)
	if err != nil {
		return nil, err
	}
	return autotune.TuneResumed(cache, sp, autotune.DirectMeasurer(arch, s), o.lower())
}

// ResumeWinograd is ResumeDirect for the fused Winograd dataflow.
func ResumeWinograd(arch Arch, s Shape, cache *TuningCache, o TuneOptions) (*TuneTrace, error) {
	sp, err := autotune.NewSpace(s, arch, autotune.Winograd, 2, true)
	if err != nil {
		return nil, err
	}
	return autotune.TuneResumed(cache, sp, autotune.WinogradMeasurer(arch, s), o.lower())
}

// TuneKind runs the engine for any algorithm kind on its pruned searching
// domain — the generic form of TuneDirect/TuneWinograd, covering the FFT
// and implicit-GEMM templates too.
func TuneKind(arch Arch, s Shape, kind Kind, o TuneOptions) (*TuneTrace, error) {
	sp, err := newKindSpace(arch, s, kind)
	if err != nil {
		return nil, err
	}
	return autotune.Tune(sp, autotune.KindMeasurer(arch, s, kind), o.lower())
}

// ResumeKind is ResumeDirect for any algorithm kind.
func ResumeKind(arch Arch, s Shape, kind Kind, cache *TuningCache, o TuneOptions) (*TuneTrace, error) {
	sp, err := newKindSpace(arch, s, kind)
	if err != nil {
		return nil, err
	}
	return autotune.TuneResumed(cache, sp, autotune.KindMeasurer(arch, s, kind), o.lower())
}

func newKindSpace(arch Arch, s Shape, kind Kind) (*autotune.Space, error) {
	e := 0
	if kind == autotune.Winograd {
		e = 2
	}
	return autotune.NewSpace(s, arch, kind, e, true)
}

// NetworkLayer is one layer of a network-level tuning request.
type NetworkLayer = autotune.NetworkLayer

// LayerVerdict is the tuning outcome of one network layer.
type LayerVerdict = autotune.LayerVerdict

// TuningCache persists tuning verdicts per (arch, algorithm, shape); it is
// safe for concurrent use and deduplicates concurrent searches of the same
// key.
type TuningCache = autotune.Cache

// NewTuningCache returns an empty tuning cache. Use LoadFile/SaveFile to
// persist it across runs.
func NewTuningCache() *TuningCache { return autotune.NewCache() }

// NetworkTuneOptions controls a network-level tuning run.
type NetworkTuneOptions struct {
	// Budget, Seed, Workers, MeasureLatency and NoPrune are the per-layer
	// engine options (see TuneOptions).
	Budget         int
	Seed           int64
	Workers        int
	MeasureLatency time.Duration
	NoPrune        bool
	// LayerWorkers is how many layers tune concurrently (default
	// GOMAXPROCS); verdicts do not depend on it.
	LayerWorkers int
	// Winograd also tunes the fused Winograd dataflow where it applies and
	// keeps the better verdict, as the paper's end-to-end evaluation does.
	Winograd bool
	// Kinds lists extra algorithm kinds the per-layer kernel choice may
	// consider where each applies (Winograd, FFT, ImplicitGEMM); the direct
	// dataflow is always tuned and every layer keeps the fastest verdict.
	Kinds []Kind
	// Warm enables cross-layer warm-starting: finished layers feed a
	// per-(arch, algorithm) transfer pool of normalized cost-model rows
	// and incumbent configurations, and every subsequent layer starts from
	// it — fitted model, transferred incumbents, in-walk bound steering —
	// instead of cold. Repeated-geometry networks converge in a fraction
	// of the measurements; verdicts stay deterministic for a fixed Seed at
	// any worker count. A cache saved by a warm run carries engine state,
	// so reloading it also rebuilds the pool.
	Warm bool
	// Resume re-enters cached layers whose persisted search state is
	// shorter than Budget: the stored measurement history replays (no
	// measurement is ever repeated) and the search continues with the
	// remaining budget.
	Resume bool
	// Retry configures the per-layer fault-tolerant measurement pipeline
	// (see TuneOptions.Retry).
	Retry RetryPolicy
}

// TuneNetwork tunes every layer of a network concurrently with a shared
// cache: layers with identical shape keys are deduplicated and tune once.
// cache may be nil for a throwaway run. Verdicts come back in layer order
// and are deterministic for a fixed seed at any worker count.
func TuneNetwork(arch Arch, layers []NetworkLayer, cache *TuningCache, o NetworkTuneOptions) ([]LayerVerdict, error) {
	return TuneNetworkContext(context.Background(), arch, layers, cache, o)
}

// TuneNetworkContext is TuneNetwork bounded by a context: past ctx's
// deadline (or on cancellation) every still-running layer search stops
// after its current measurement and reports best-so-far, so the sweep
// returns a complete verdict list with truncated layers marked Partial
// instead of an error. Truncated engine state persists into cache at its
// honest budget; repeating the request with Resume continues the search.
func TuneNetworkContext(ctx context.Context, arch Arch, layers []NetworkLayer, cache *TuningCache, o NetworkTuneOptions) ([]LayerVerdict, error) {
	per := TuneOptions{Budget: o.Budget, Seed: o.Seed, Workers: o.Workers, MeasureLatency: o.MeasureLatency, NoPrune: o.NoPrune, Retry: o.Retry}
	return autotune.TuneNetworkContext(ctx, arch, layers, cache, autotune.NetworkOptions{
		Tune:     per.lower(),
		Workers:  o.LayerWorkers,
		Winograd: o.Winograd,
		Kinds:    o.Kinds,
		Warm:     o.Warm,
		Resume:   o.Resume,
	})
}

// NetworkSeconds sums repeat-weighted simulated layer times of a verdict
// list — the tuned network's end-to-end convolution time.
func NetworkSeconds(verdicts []LayerVerdict) float64 {
	return autotune.NetworkSeconds(verdicts)
}

// Analysis is the complete bound→design→tune report of one layer.
type Analysis = core.Analysis

// Analyze runs the paper's whole pipeline on one layer: lower bounds,
// Section-5 dataflow designs, auto-tuned refinements and measured outcomes
// for every applicable algorithm.
func Analyze(arch Arch, s Shape, o TuneOptions) (*Analysis, error) {
	return core.Analyze(arch, s, core.Options{Budget: o.Budget, Seed: o.Seed})
}

// Verify checks that a result's output matches the reference oracle within
// tol, returning the max absolute difference.
func Verify(s Shape, res *Result, input, kernels *Tensor, tol float64) (float64, error) {
	if res.Output == nil {
		return 0, fmt.Errorf("repro: result has no output tensor (count-only run)")
	}
	want, err := conv.Reference(s, input, kernels)
	if err != nil {
		return 0, err
	}
	diff := tensor.MaxAbsDiff(res.Output, want)
	if diff > tol {
		return diff, fmt.Errorf("repro: output differs from reference by %g (tol %g)", diff, tol)
	}
	return diff, nil
}
