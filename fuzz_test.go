package repro

import (
	"encoding/json"
	"testing"
)

// The network-description decoder is the service's front door and parses
// whatever a client POSTs. Under fuzzing it must either return a validated
// description or an error — never panic — and anything it accepts must
// survive a marshal/reparse round trip unchanged (the wire format is
// self-consistent).
func FuzzParseNetworkDescription(f *testing.F) {
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":64,"hin":28,"cout":64,"hker":3,"pad":1}],"options":{"budget":16}}`))
	f.Add([]byte(`{"arch":"TitanX","name":"resnet18","layers":[{"name":"conv1","batch":1,"cin":3,"hin":224,"win":224,"cout":64,"hker":7,"wker":7,"stride":2,"pad":3,"repeat":1}],"options":{"budget":400,"seed":7,"winograd":false}}`))
	f.Add([]byte(`{"arch":"","layers":[]}`))
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":-1,"hin":8,"cout":8,"hker":3}]}`))
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":65537,"hin":8,"cout":8,"hker":3}]}`))
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":32,"hin":112,"cout":32,"hker":3,"pad":1,"groups":32}],"options":{"kinds":["fft","igemm"]}}`))
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":6,"hin":8,"cout":9,"hker":3,"groups":4}]}`))
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3}],"options":{"kinds":["karatsuba"]}}`))
	f.Add([]byte(`{"arch":"V100","unknown":true}`))
	f.Add([]byte(`{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]}{}`))
	f.Add([]byte(`[`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseNetworkDescription(data)
		if err != nil {
			return
		}
		// Accepted input: the normalized description re-encodes and
		// re-parses to itself.
		again, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("accepted description failed to marshal: %v", err)
		}
		d2, err := ParseNetworkDescription(again)
		if err != nil {
			t.Fatalf("re-encoded description rejected: %v", err)
		}
		if len(d2.Layers) != len(d.Layers) || d2.Arch != d.Arch {
			t.Fatalf("round trip changed the description: %+v != %+v", d2, d)
		}
	})
}

// The forwarded-request decoder parses what peer replicas POST to
// /v1/cluster/tune. A replica's cluster port is as exposed as its client
// port, so the envelope gets the same fuzz contract: no panic, and accepted
// envelopes re-encode to themselves.
func FuzzParseForwardedTuneRequest(f *testing.F) {
	f.Add([]byte(`{"origin":"http://127.0.0.1:9911","network":{"arch":"V100","layers":[{"cin":64,"hin":28,"cout":64,"hker":3,"pad":1}],"options":{"budget":16}}}`))
	f.Add([]byte(`{"origin":"http://10.0.0.2:8080","attempt":2,"network":{"arch":"TitanX","layers":[{"cin":3,"hin":224,"cout":64,"hker":7,"stride":2,"pad":3}],"options":{"seed":7,"kinds":["fft"]}}}`))
	f.Add([]byte(`{"network":{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3}]}}`))
	f.Add([]byte(`{"origin":"x","attempt":-1,"network":{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3}]}}`))
	f.Add([]byte(`{"origin":"x","attempt":9,"network":{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3}]}}`))
	f.Add([]byte(`{"origin":"x","network":{"arch":"","layers":[]}}`))
	f.Add([]byte(`{"origin":"x","network":{"arch":"V100","layers":[{"cin":-1,"hin":8,"cout":8,"hker":3}]}}`))
	f.Add([]byte(`{"origin":"x","hops":1,"network":{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3}]}}`))
	f.Add([]byte(`{"origin":"x","network":{"arch":"V100","layers":[{"cin":8,"hin":8,"cout":8,"hker":3,"pad":1}]}}{}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ParseForwardedTuneRequest(data)
		if err != nil {
			return
		}
		again, err := json.Marshal(fr)
		if err != nil {
			t.Fatalf("accepted envelope failed to marshal: %v", err)
		}
		fr2, err := ParseForwardedTuneRequest(again)
		if err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
		if fr2.Origin != fr.Origin || fr2.Attempt != fr.Attempt ||
			fr2.Network.Arch != fr.Network.Arch || len(fr2.Network.Layers) != len(fr.Network.Layers) {
			t.Fatalf("round trip changed the envelope: %+v != %+v", fr2, fr)
		}
	})
}
